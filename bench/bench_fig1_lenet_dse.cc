/**
 * @file
 * Reproduces the Section 2 LeNet case study: Figure 1 (exhaustive design
 * space in the throughput-resource plane, with and without dataflow) and
 * Table 2 (expert vs exhaustive vs HIDA on a PYNQ-Z2).
 *
 * The exhaustive sweep walks the exact factor grid of Table 1 — BATCH x
 * KPF1 x (KPF2,CPF2) x (KPF3,CPF3) — under both dataflow and non-dataflow
 * settings (5*4*5*4*6*5 * 2 = 24,000 points, matching the paper's
 * "more than 2.4e4 points"). Each (mode, batch) prototype is lowered
 * once; the per-factor grid is then swept by the sharded DSE engine
 * (src/dse/): every worker deep-clones the prototype, re-applies the
 * factors per point, re-partitions the arrays and re-estimates QoR with
 * its own estimator, and results are merged in grid order — so stdout is
 * bit-identical to the serial sweep at any HIDA_BENCH_THREADS.
 *
 * The sweep runs on the resilient engine: prototypes are verified up
 * front, a failed point (e.g. under HIDA_FAULT_INJECT=kind:seed:rate)
 * is reported on stderr and excluded from the feasible set instead of
 * killing the run, and two env knobs exercise the robustness paths:
 *   HIDA_SWEEP_JOURNAL=<prefix>   checkpoint each (mode, batch) sweep to
 *                                 <prefix>_{df|nodf}_b<batch>.jrnl and
 *                                 resume from it on restart;
 *   HIDA_SWEEP_DEADLINE_MS=<ms>   wall-clock budget per sweep.
 * SIGINT/SIGTERM trip the process shutdown token (src/service/
 * shutdown.h): the sweep stops between points, flushes its journal and
 * the bench exits 128+sig — completed points are never lost mid-write.
 * On a clean, unlimited run stdout is byte-identical to the fault-free
 * engine (the bench.sh serial-vs-sharded sha gate proves it).
 *
 * The sweep itself is strategy-driven (src/dse/strategy.h):
 *   HIDA_DSE_STRATEGY=exhaustive|random|lhs|evolve   search strategy
 *                                 (default exhaustive — byte-identical
 *                                 stdout to the pre-strategy bench);
 *   HIDA_DSE_SEED=<n>             root of every sampling decision;
 *   HIDA_DSE_ORDER=gray|row-major evaluation order (gray: consecutive
 *                                 points mutate one directive — max
 *                                 estimator memo reuse);
 *   HIDA_DSE_SCHED=steal|static   worker scheduling (steal: dry workers
 *                                 adopt straggler slices);
 *   HIDA_DSE_BUDGET=<n>           points per (mode, batch) sweep a
 *                                 sampling strategy may propose
 *                                 (default 10% of the grid);
 *   HIDA_DSE_STATS=<path>         write a JSON stats record (points
 *                                 proposed/evaluated, Pareto coverage
 *                                 vs the exhaustive reference, cache
 *                                 hit rate) for bench.sh to fold into
 *                                 BENCH_dse.json.
 * A sampling run additionally sweeps the exhaustive reference front per
 * (mode, batch) to report *true* Pareto coverage — the acceptance
 * metric (evolve: >= 95% coverage at <= 10% of the points).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/dialect/affine/affine_ops.h"
#include "src/driver/driver.h"
#include "src/dse/strategy.h"
#include "src/dse/sweep.h"
#include "src/models/dnn_models.h"
#include "src/service/shutdown.h"
#include "src/support/env.h"
#include "src/transforms/passes.h"

using namespace hida;

namespace {

// Namespace-scope interned tags: interned once at startup, before any
// worker thread exists. (Function-local statics would also be safe —
// magic-static init plus the now-internally-locked Identifier::get —
// this is a warm-up and a scoping choice, not a race fix.)
const Identifier kLayerSeqId = Identifier::get("layer_seq");
const Identifier kKpfLoopId = Identifier::get("kpf_loop");
const Identifier kCpfLoopId = Identifier::get("cpf_loop");

struct Point {
    double util = 0.0;       ///< max(BRAM%, DSP%, LUT%).
    double throughput = 0.0; ///< images/s (batch-adjusted).
    bool dataflow = false;
};

/** Set the kpf/cpf unroll factors of layer @p seq (Table 2 fixed points;
 * the sweep itself goes through the grid-driven applyPoint). */
void
setLayerFactors(ModuleOp module, int64_t seq, int64_t kpf, int64_t cpf)
{
    module.op()->walk([&](Operation* op) {
        if (!isa<ForOp>(op) || op->intAttrOr(kLayerSeqId, -1) != seq)
            return;
        if (op->hasAttr(kKpfLoopId))
            ForOp(op).setUnrollFactor(
                std::min<int64_t>(kpf, ForOp(op).tripCount()));
        if (op->hasAttr(kCpfLoopId))
            ForOp(op).setUnrollFactor(
                std::min<int64_t>(cpf, ForOp(op).tripCount()));
    });
}

/** The Table 1 factor grid (KPF/CPF per layer; CPF1 is fixed at 1). */
DesignPointGrid
factorGrid()
{
    DesignPointGrid grid;
    grid.addDirectiveAxis("kpf1", {1, 2, 3, 6}, 1, "kpf_loop");
    grid.addDirectiveAxis("cpf1", {1}, 1, "cpf_loop");
    grid.addDirectiveAxis("kpf2", {1, 2, 4, 8, 16}, 2, "kpf_loop");
    grid.addDirectiveAxis("cpf2", {1, 2, 3, 6}, 2, "cpf_loop");
    grid.addDirectiveAxis("kpf3", {1, 2, 3, 4, 6, 8}, 3, "kpf_loop");
    grid.addDirectiveAxis("cpf3", {1, 2, 4, 8, 16}, 3, "cpf_loop");
    return grid;
}

/** Wall-clock budget per sweep from HIDA_SWEEP_DEADLINE_MS (0: none).
 * envDouble fatals on malformed values — the old atof parse silently
 * disabled the deadline on garbage like "30s". */
double
sweepDeadlineSeconds()
{
    return envDouble("HIDA_SWEEP_DEADLINE_MS", 0.0) / 1000.0;
}

/** Upper-convex (Pareto) filter: max throughput per utilization budget. */
std::vector<Point>
paretoFront(std::vector<Point> points)
{
    std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
        return a.util < b.util;
    });
    std::vector<Point> front;
    double best = 0.0;
    for (const Point& p : points) {
        if (p.throughput > best) {
            best = p.throughput;
            front.push_back(p);
        }
    }
    return front;
}

} // namespace

int
main()
{
    // SIGINT/SIGTERM trip the process shutdown token, which every sweep
    // below observes between points: the interrupted sweep flushes its
    // journal on the way out instead of dying mid-write, so completed
    // points survive to the next run.
    installShutdownHandlers();
    TargetDevice device = TargetDevice::pynqZ2();
    const std::vector<int64_t> batches = {1, 5, 10, 15, 20};
    const DesignPointGrid grid = factorGrid();
    const unsigned threads = dseThreadCount();
    // HIDA_DSE_ORDER / HIDA_DSE_SCHED: evaluation order and worker
    // scheduling. Output-invariant by construction (results merge by
    // grid index); the defaults (gray, steal) are the fast path.
    const SweepSchedule schedule = sweepScheduleFromEnv();

    // Strategy selection: HIDA_DSE_STRATEGY/SEED/BUDGET (an unknown
    // strategy is a user error — exit kFatalExitCode, never a silent
    // exhaustive fallback). The feasibility limit feeds evolve's parent
    // filter: over-utilized points never breed.
    StrategyOptions strategy_options = strategyOptionsFromEnv();
    strategy_options.costLimit = 1.05;
    const bool sampled =
        strategy_options.kind != StrategyKind::kExhaustive;

    const char* journal_prefix = std::getenv("HIDA_SWEEP_JOURNAL");
    const double deadline_seconds = sweepDeadlineSeconds();
    size_t total_failures = 0, total_restored = 0;
    bool any_stopped = false;
    StrategySweepStats total_stats;
    // True-coverage accounting vs the per-(mode, batch) exhaustive
    // reference fronts (sampling runs only).
    size_t front_covered = 0, front_total = 0;

    std::vector<Point> points;
    for (bool dataflow : {true, false}) {
        for (int64_t batch : batches) {
            // Lower once per (mode, batch); the sharded sweep re-applies
            // factors per point on per-worker clones of this prototype.
            OwnedModule module = buildLeNet(batch);
            FlowOptions options = optionsFor(dataflow ? Flow::kHida
                                                      : Flow::kVitis);
            options.enableTiling = false;  // LeNet fits on-chip (PYNQ)
            options.enableParallelization = false;
            compile(module.get(), options, device);

            // A broken prototype fails the run up front through the
            // user-error path — never an abort in some sweep worker.
            if (auto diag = verifySweepPrototype(module.get())) {
                emitDiagnostic(*diag);
                HIDA_FATAL("sweep prototype rejected: ", diag->message);
            }

            FlowOptions partition_options = options;
            partition_options.enableParallelization = true;

            SweepLimits limits;
            limits.deadlineSeconds = deadline_seconds;
            limits.cancel = &processShutdownToken();
            SweepJournal journal;
            if (journal_prefix != nullptr && *journal_prefix != '\0') {
                std::string path =
                    std::string(journal_prefix) +
                    (dataflow ? "_df" : "_nodf") + "_b" +
                    std::to_string(batch) + ".jrnl";
                if (auto diag = journal.open(path, grid.contentHash(),
                                             sizeof(Point)))
                    emitDiagnostic(*diag);
                limits.journal = &journal;
            }

            std::function<ResilientWorker<Point>()> factory =
                [&grid, &module, &partition_options, &device, batch]() {
                    auto w = std::make_shared<CloneSweepWorker>(
                        module.get(),
                        createArrayPartitionPass(partition_options), device);
                    ResilientWorker<Point> worker;
                    worker.evaluate =
                        [w, &grid, &device, batch](
                            size_t,
                            const std::vector<int64_t>& vals) -> Result<Point> {
                        Result<DesignQor> qor = w->evaluateChecked(grid, vals);
                        if (!qor.ok())
                            return qor.takeDiag();
                        Point point;
                        point.util = qor.value().res.utilization(device);
                        point.throughput =
                            qor.value().throughput(device) * batch;
                        return point;
                    };
                    worker.recover = [w]() { w->rebuild(); };
                    worker.cacheStats = [w]() {
                        return w->estimator.cacheStats();
                    };
                    return worker;
                };

            std::unique_ptr<SearchStrategy> strategy =
                makeStrategy(grid, strategy_options);
            StrategyOutcome<Point> outcome = runStrategySweep<Point>(
                grid, *strategy, factory,
                [](size_t index, const Point& p) {
                    return ParetoSample{index, p.util, p.throughput};
                },
                threads, limits, schedule);

            total_failures += outcome.failures.size();
            total_restored += outcome.stats.restored;
            total_stats.batches += outcome.stats.batches;
            total_stats.proposed += outcome.stats.proposed;
            total_stats.evaluated += outcome.stats.evaluated;
            total_stats.restored += outcome.stats.restored;
            total_stats.cache += outcome.stats.cache;
            if (outcome.stats.stopped) {
                any_stopped = true;
                total_stats.stopped = true;
                if (outcome.stats.stopReason)
                    emitDiagnostic(*outcome.stats.stopReason);
            }

            // Interrupted: the engine already flushed the journal on
            // its way out; exit with the conventional signal code
            // instead of burning the remaining configurations.
            if (processShutdownToken().cancelled()) {
                inform("interrupted: journal flushed; exiting");
                int sig = shutdownSignal();
                return sig != 0 ? shutdownExitCode(sig) : 1;
            }

            // Deterministic merge: grid order, same filter as the serial
            // sweep. Failed or unreached points are simply not feasible.
            for (size_t i = 0; i < outcome.results.size(); ++i) {
                if (!outcome.completed[i])
                    continue;
                Point point = outcome.results[i];
                point.dataflow = dataflow;
                if (point.util <= 1.05)
                    points.push_back(point);
            }

            // Sampling runs report *true* Pareto coverage: sweep the
            // exhaustive reference front of this (mode, batch) config
            // and count how much of it the sample dominates-or-equals.
            if (sampled) {
                SweepOutcome<Point> reference =
                    ShardedSweep::runResilient<Point>(grid, factory,
                                                      threads,
                                                      SweepLimits(),
                                                      schedule);
                std::vector<ParetoSample> feasible;
                for (size_t i = 0; i < reference.results.size(); ++i) {
                    if (!reference.completed[i])
                        continue;
                    const Point& p = reference.results[i];
                    if (p.util <= 1.05)
                        feasible.push_back({i, p.util, p.throughput});
                }
                std::vector<ParetoSample> ref_front =
                    paretoFrontOf(std::move(feasible));
                ParetoArchive found;
                for (size_t i = 0; i < outcome.results.size(); ++i) {
                    if (!outcome.completed[i])
                        continue;
                    const Point& p = outcome.results[i];
                    if (p.util <= 1.05)
                        found.insert({i, p.util, p.throughput});
                }
                size_t covered_here = 0;
                for (const ParetoSample& s : ref_front)
                    if (found.covers(s))
                        ++covered_here;
                front_covered += covered_here;
                front_total += ref_front.size();
                inform(strCat("reference front (",
                              dataflow ? "df" : "nodf", " b", batch,
                              "): ", covered_here, "/", ref_front.size(),
                              " points covered"));
            }
        }
    }
    if (total_failures > 0 || total_restored > 0 || any_stopped)
        inform(strCat("resilient sweep: ", total_failures,
                      " failed point(s), ", total_restored,
                      " restored from journal",
                      any_stopped ? ", stopped before completion" : ""));

    const double coverage_pct =
        front_total == 0
            ? 100.0
            : 100.0 * static_cast<double>(front_covered) /
                  static_cast<double>(front_total);
    // Sampling summary on stdout only for sampling runs: the default
    // exhaustive stdout stays byte-identical to the pre-strategy bench
    // (the bench.sh output_sha256 gate depends on it).
    if (sampled) {
        std::printf("DSE strategy %s (seed %llu): proposed %zu of %zu "
                    "points, evaluated %zu, Pareto coverage %.1f%%\n",
                    strategyKindName(strategy_options.kind).data(),
                    static_cast<unsigned long long>(strategy_options.seed),
                    total_stats.proposed,
                    grid.size() * 2 * batches.size(), total_stats.evaluated,
                    coverage_pct);
        // The memo hit rate depends on how points land on workers, so
        // it varies with HIDA_BENCH_THREADS — keep it off stdout, which
        // must stay bit-identical for a fixed seed at any thread count.
        inform(strCat("estimator memo hit rate ",
                      static_cast<size_t>(
                          total_stats.cache.memoHitRate() * 1000.0),
                      "/1000"));
    }

    // Machine-readable stats for bench.sh / BENCH_dse.json.
    if (const char* stats_path = std::getenv("HIDA_DSE_STATS")) {
        if (*stats_path != '\0') {
            std::FILE* f = std::fopen(stats_path, "w");
            if (f == nullptr) {
                HIDA_FATAL("cannot write HIDA_DSE_STATS file '", stats_path,
                           "'");
            }
            std::fprintf(
                f,
                "{\n"
                "  \"strategy\": \"%s\",\n"
                "  \"seed\": %llu,\n"
                "  \"grid_points\": %zu,\n"
                "  \"points_proposed\": %zu,\n"
                "  \"points_evaluated\": %zu,\n"
                "  \"points_restored\": %zu,\n"
                "  \"batches\": %zu,\n"
                "  \"pareto_coverage_pct\": %.2f,\n"
                "  \"cache_hit_rate_pct\": %.2f,\n"
                "  \"stopped\": %s\n"
                "}\n",
                strategyKindName(strategy_options.kind).data(),
                static_cast<unsigned long long>(strategy_options.seed),
                grid.size() * 2 * batches.size(), total_stats.proposed,
                total_stats.evaluated, total_stats.restored,
                total_stats.batches, coverage_pct,
                total_stats.cache.memoHitRate() * 100.0,
                total_stats.stopped ? "true" : "false");
            std::fclose(f);
        }
    }

    std::printf("Figure 1: LeNet exhaustive design space (PYNQ-Z2), "
                "%zu feasible of 24000 points\n", points.size());
    std::vector<Point> df_points, nodf_points;
    for (const Point& p : points)
        (p.dataflow ? df_points : nodf_points).push_back(p);

    auto print_front = [](const char* name, const std::vector<Point>& front) {
        std::printf("%s Pareto front (util%%, images/s):\n", name);
        for (const Point& p : front)
            std::printf("  %5.1f%% %10.1f\n", p.util * 100.0, p.throughput);
    };
    std::vector<Point> df_front = paretoFront(df_points);
    std::vector<Point> nodf_front = paretoFront(nodf_points);
    print_front("w/ dataflow", df_front);
    print_front("w/o dataflow", nodf_front);

    // Headline ratios of Figure 1.
    double best_df = 0.0, best_nodf = 0.0, worst_df = 1e30;
    for (const Point& p : df_points) {
        best_df = std::max(best_df, p.throughput);
        worst_df = std::min(worst_df, p.throughput);
    }
    for (const Point& p : nodf_points)
        best_nodf = std::max(best_nodf, p.throughput);
    std::printf("\nBest dataflow / best non-dataflow: %.2fx (paper: 3.13x)\n",
                best_df / std::max(best_nodf, 1e-9));
    std::printf("Best non-dataflow / worst dataflow: %.2fx (paper: 3.83x)\n",
                best_nodf / std::max(worst_df, 1e-9));

    // ---- Table 2 ----
    // Expert design: the heuristic hand-tuned configuration (mid-grid
    // intensity-guided factors at batch 10 with dataflow).
    double expert = 0.0, expert_util = 0.0;
    {
        OwnedModule module = buildLeNet(10);
        FlowOptions options = optionsFor(Flow::kHida);
        options.enableTiling = false;
        options.enableParallelization = false;
        compile(module.get(), options, device);
        setLayerFactors(module.get(), 1, 3, 1);
        setLayerFactors(module.get(), 2, 8, 3);
        setLayerFactors(module.get(), 3, 6, 8);
        FuncOp func = topFunc(module.get());
        FlowOptions partition_options = options;
        partition_options.enableParallelization = true;
        createArrayPartitionPass(partition_options)->runOnModule(module.get());
        QorEstimator estimator(device);
        DesignQor qor = estimator.estimateFunc(func);
        expert = qor.throughput(device) * 10;
        expert_util = qor.res.utilization(device);
    }
    // HIDA design: fully automated flow (options untouched).
    CompileResult hida = compileAutoTuned(
        [&]() { return buildLeNet(10); },
        [] {
            FlowOptions o = optionsFor(Flow::kHida);
            o.enableTiling = false;
            return o;
        }(),
        device);

    std::printf("\nTable 2: LeNet evaluation (images/s)\n");
    std::printf("%-14s %12s %12s %12s\n", "", "Expert", "Exhaustive", "HIDA");
    std::printf("%-14s %11.1f%% %11.1f%% %11.1f%%\n", "Resource util",
                expert_util * 100.0,
                df_front.empty() ? 0.0 : df_front.back().util * 100.0,
                hida.overload * 100.0);
    std::printf("%-14s %12.1f %12.1f %12.1f\n", "Throughput", expert,
                best_df, hida.effectiveThroughput * 10.0);
    std::printf("(paper: 41.6k / 49.9k / 53.2k images/s at 95.5/99.2/95.0%% "
                "util; develop cycle 40h / 210h / 9.9min)\n");
    return 0;
}
