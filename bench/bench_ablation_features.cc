/**
 * @file
 * Ablation of HIDA's individual design choices (DESIGN.md Section 5):
 * starting from the full pipeline, each row disables exactly one
 * mechanism — task fusion, tiling/external memory, multi-producer
 * elimination, data-path balancing, IA, CA — and reports the impact on
 * throughput and resources for one dataflow-rich C++ kernel (2mm) and one
 * DNN (ResNet-18). This quantifies which mechanism buys what.
 */

#include <cstdio>
#include <functional>

#include "src/driver/driver.h"
#include "src/models/dnn_models.h"
#include "src/models/polybench.h"

using namespace hida;

namespace {

struct Arm {
    const char* name;
    std::function<void(FlowOptions&)> tweak;
};

void
runSuite(const char* workload, const TargetDevice& device,
         const std::function<OwnedModule()>& rebuild, int64_t pf)
{
    const Arm arms[] = {
        {"full HIDA", [](FlowOptions&) {}},
        {"- task fusion",
         [](FlowOptions& o) { o.enableTaskFusion = false; }},
        {"- tiling/ext mem",
         [](FlowOptions& o) { o.enableTiling = false; }},
        {"- multi-prod elim",
         [](FlowOptions& o) { o.enableMultiProducerElim = false; }},
        {"- balancing",
         [](FlowOptions& o) { o.enableBalancing = false; }},
        {"- intensity-aware",
         [](FlowOptions& o) { o.strategy.intensityAware = false; }},
        {"- connection-aware",
         [](FlowOptions& o) { o.strategy.connectionAware = false; }},
    };

    std::printf("%s (max parallel factor %ld, %s):\n", workload, pf,
                device.name.c_str());
    std::printf("  %-20s %12s %8s %8s %10s\n", "arm", "thr(smp/s)", "DSP",
                "BRAM", "vs full");
    double full = 0.0;
    for (const Arm& arm : arms) {
        FlowOptions options = optionsFor(Flow::kHida);
        options.maxParallelFactor = pf;
        arm.tweak(options);
        OwnedModule module = rebuild();
        CompileResult result = compile(module.get(), options, device);
        if (full == 0.0)
            full = result.effectiveThroughput;
        std::printf("  %-20s %12.2f %8ld %8ld %9.2fx\n", arm.name,
                    result.effectiveThroughput, result.qor.res.dsp,
                    result.qor.res.bram18k,
                    result.effectiveThroughput / full);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Design-choice ablations (each arm disables one HIDA "
                "mechanism)\n\n");
    runSuite("2mm", TargetDevice::zu3eg(),
             [] { return buildPolybenchKernel("2mm"); }, 64);
    runSuite("ResNet-18", TargetDevice::vu9pSlr(),
             [] { return buildDnnModel("ResNet-18", nullptr); }, 64);
    return 0;
}
