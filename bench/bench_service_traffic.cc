/**
 * @file
 * Synthetic heavy-traffic soak of the DSE service core (src/service/):
 * a closed-loop client fleet drives a deterministic multi-tenant mix of
 * fig1-, fig10- and fig11-shaped requests (exhaustive / random-sampled
 * / evolve searches over LeNet factor grids at several batch sizes and
 * both dataflow modes) through one DseService, and the bench reports
 * requests/sec, end-to-end p99, and the queue-wait vs execution-time
 * breakdown that makes scheduler changes attributable.
 *
 * This is the robustness proving ground, not a throughput contest:
 *  - Under HIDA_FAULT_INJECT (store/service/any sites included) every
 *    request must still get exactly one terminal response — the bench
 *    exits non-zero if totality is violated.
 *  - Per-request payloads are digested (in sequence order, independent
 *    of submission interleaving) into "response_digest": the same
 *    workload must produce the same digest at any
 *    HIDA_SERVICE_CONCURRENCY, clean or faulted — scripts/
 *    service_soak.sh compares digests across concurrency 1/2/4.
 *  - SIGINT/SIGTERM mid-run drains gracefully: in-flight requests
 *    finish early (partial), queued ones are answered kShutdown, the
 *    store is flushed, and the bench exits 128+sig — so a kill/restart
 *    pair warm-starts from the persistent store (scripts/
 *    service_soak.sh drives exactly that and checks hit rate > 50%).
 *
 * Knobs (all documented in the README table):
 *   HIDA_SERVICE_REQUESTS     total requests to submit (default 60)
 *   HIDA_SERVICE_CLIENTS      closed-loop client threads (default 4)
 *   HIDA_SERVICE_DEADLINE_MS  per-request deadline (0 = none)
 *   HIDA_SERVICE_STATS        JSON output path for bench.sh
 *   HIDA_QOR_STORE, HIDA_SERVICE_CONCURRENCY, HIDA_SERVICE_WORKERS,
 *   HIDA_SERVICE_QUEUE_DEPTH, HIDA_SERVICE_RETRIES,
 *   HIDA_SERVICE_TENANT_WEIGHTS  service tuning (ServiceOptions::fromEnv)
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/dse/grid.h"
#include "src/service/service.h"
#include "src/service/shutdown.h"
#include "src/support/env.h"
#include "src/support/utils.h"

using namespace hida;

namespace {

/** The Table 1 LeNet factor grid (the fig1 design space). */
DesignPointGrid
fullFactorGrid()
{
    DesignPointGrid grid;
    grid.addDirectiveAxis("kpf1", {1, 2, 3, 6}, 1, "kpf_loop");
    grid.addDirectiveAxis("cpf1", {1}, 1, "cpf_loop");
    grid.addDirectiveAxis("kpf2", {1, 2, 4, 8, 16}, 2, "kpf_loop");
    grid.addDirectiveAxis("cpf2", {1, 2, 3, 6}, 2, "cpf_loop");
    grid.addDirectiveAxis("kpf3", {1, 2, 3, 4, 6, 8}, 3, "kpf_loop");
    grid.addDirectiveAxis("cpf3", {1, 2, 4, 8, 16}, 3, "cpf_loop");
    return grid;
}

/** A reduced 32-point slice of the same space: cheap enough that an
 * exhaustive request finishes in service-traffic time. */
DesignPointGrid
smallFactorGrid()
{
    DesignPointGrid grid;
    grid.addDirectiveAxis("kpf1", {1, 6}, 1, "kpf_loop");
    grid.addDirectiveAxis("cpf1", {1}, 1, "cpf_loop");
    grid.addDirectiveAxis("kpf2", {2, 16}, 2, "kpf_loop");
    grid.addDirectiveAxis("cpf2", {1, 6}, 2, "cpf_loop");
    grid.addDirectiveAxis("kpf3", {2, 8}, 3, "kpf_loop");
    grid.addDirectiveAxis("cpf3", {1, 16}, 3, "cpf_loop");
    return grid;
}

/**
 * The deterministic traffic mix, keyed only on the request sequence
 * number so every run (and a restarted run) resubmits the identical
 * workload — which is what makes both the warm-start hit-rate check
 * and the cross-concurrency digest comparison of scripts/
 * service_soak.sh meaningful. Three tenants round-robin the sequence
 * (exercising the fair-queue path), and faultKey pins request-level
 * fault/retry decisions to the sequence number, not to the
 * timing-dependent submission order.
 */
ServiceRequest
shapedRequest(size_t seq, double deadline_seconds)
{
    const int64_t batches[3] = {1, 5, 10};
    ServiceRequest request;
    request.model = "lenet";
    request.batch = batches[(seq / 3) % 3];
    request.dataflow = (seq / 9) % 2 == 0;
    request.deadlineSeconds = deadline_seconds;
    request.tenant = strCat("tenant", seq % 3);
    request.faultKey = seq + 1;
    switch (seq % 3) {
      case 0:  // fig1-shaped: exhaustive over the reduced space
        request.grid = smallFactorGrid();
        request.strategy.kind = StrategyKind::kExhaustive;
        break;
      case 1:  // fig10-shaped: random sample of the full space
        request.grid = fullFactorGrid();
        request.strategy.kind = StrategyKind::kRandom;
        request.strategy.budget = 24;
        request.strategy.seed = 42 + seq;
        break;
      default:  // fig11-shaped: Pareto-guided evolve search
        request.grid = fullFactorGrid();
        request.strategy.kind = StrategyKind::kEvolve;
        request.strategy.budget = 24;
        request.strategy.seed = 42 + seq;
        request.strategy.costLimit = 1.05;
        break;
    }
    return request;
}

/** Everything timing-independent about one terminal response, folded
 * into one hash: status, degraded flag, retry count, result bytes,
 * completion bitmap and surviving failures. Counters that legitimately
 * vary with scheduling (storeHits, evaluated, latencies) are excluded
 * by construction. */
uint64_t
responseDigest(const ServiceResponse& response)
{
    uint64_t h = hashMix(static_cast<uint64_t>(response.status));
    h = hashCombine(h, response.degraded ? 1 : 0);
    h = hashCombine(h, response.requestRetries);
    for (const ServicePoint& point : response.results) {
        uint64_t bits = 0;
        std::memcpy(&bits, &point.util, sizeof(bits));
        h = hashCombine(h, bits);
        std::memcpy(&bits, &point.throughput, sizeof(bits));
        h = hashCombine(h, bits);
    }
    for (uint8_t done : response.completed)
        h = hashCombine(h, done);
    for (const PointFailure& failure : response.failures) {
        h = hashCombine(h, failure.index);
        h = hashCombine(h, static_cast<uint64_t>(failure.diag.code));
    }
    return h;
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[std::min(
        samples.size() - 1,
        static_cast<size_t>(p * static_cast<double>(samples.size())))];
}

/** Per-sequence-slot sample; slots are disjoint across clients, so the
 * fleet fills them without locking. */
struct Sample {
    bool answered = false;
    double latencySeconds = 0.0;
    double queueSeconds = 0.0;
    double runSeconds = 0.0;
    uint64_t digest = 0;
};

} // namespace

int
main()
{
    installShutdownHandlers();

    const size_t requests = envUint("HIDA_SERVICE_REQUESTS", 60);
    const size_t clients = std::max<uint64_t>(
        1, envUint("HIDA_SERVICE_CLIENTS", 4));
    const double deadline_seconds =
        envDouble("HIDA_SERVICE_DEADLINE_MS", 0.0) / 1000.0;

    ServiceOptions options = ServiceOptions::fromEnv();
    // Soft-degrade from half the hard bound up: bursts answer cheap
    // (sampled, 1/8 budget) instead of queueing into the shed zone.
    if (options.maxQueueDepth > 0)
        options.degradeQueueDepth = std::max<size_t>(
            1, options.maxQueueDepth / 2);
    DseService service(options);

    std::mutex merge_mutex;
    size_t completed = 0, partial = 0, shed = 0, rejected = 0, failed = 0,
           degraded = 0, answered = 0;
    size_t store_hits = 0, points_evaluated = 0;
    std::vector<Sample> samples(requests);

    const auto bench_start = std::chrono::steady_clock::now();
    std::vector<std::thread> fleet;
    for (size_t c = 0; c < clients; ++c) {
        fleet.emplace_back([&, c]() {
            // Closed loop: each client walks its own slice of the
            // request sequence, one outstanding request at a time.
            for (size_t seq = c; seq < requests; seq += clients) {
                const auto t0 = std::chrono::steady_clock::now();
                uint64_t id =
                    service.submit(shapedRequest(seq, deadline_seconds));
                ServiceResponse response = service.wait(id);
                Sample& sample = samples[seq];
                sample.answered = true;
                sample.latencySeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                sample.queueSeconds = response.queueSeconds;
                sample.runSeconds = response.runSeconds;
                sample.digest = responseDigest(response);
                std::lock_guard<std::mutex> lock(merge_mutex);
                ++answered;
                store_hits += response.storeHits;
                points_evaluated += response.evaluated;
                if (response.degraded)
                    ++degraded;
                switch (response.status) {
                  case RequestStatus::kCompleted:
                    ++completed;
                    break;
                  case RequestStatus::kPartial:
                    ++partial;
                    break;
                  case RequestStatus::kShed:
                    ++shed;
                    break;
                  case RequestStatus::kRejected:
                    ++rejected;
                    break;
                  case RequestStatus::kFailed:
                    ++failed;
                    break;
                }
            }
        });
    }
    for (std::thread& t : fleet)
        t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      bench_start)
            .count();
    service.shutdown();

    // Totality is the acceptance criterion: every submitted request got
    // exactly one terminal response, even under faults and signals.
    const ServiceStats stats = service.stats();
    if (answered != requests || stats.answered != stats.submitted) {
        std::fprintf(stderr,
                     "FAIL: totality violated (%zu/%zu client responses, "
                     "%zu/%zu service answers)\n",
                     answered, requests, stats.answered, stats.submitted);
        return 1;
    }

    // Sequence-ordered fold over the per-request digests: identical
    // workloads must match at any concurrency x workers combination.
    uint64_t response_digest = hashMix(UINT64_C(0x53564344));  // 'SVCD'
    std::vector<double> latencies, queue_waits, exec_times;
    latencies.reserve(requests);
    for (const Sample& sample : samples) {
        if (!sample.answered)
            continue;
        response_digest = hashCombine(response_digest, sample.digest);
        latencies.push_back(sample.latencySeconds);
        queue_waits.push_back(sample.queueSeconds);
        exec_times.push_back(sample.runSeconds);
    }

    const double p99 = percentile(latencies, 0.99);
    const QorStore::Stats store = service.storeStats();
    const size_t lookups = store.hits + store.misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(store.hits) /
                           static_cast<double>(lookups);
    const double rps = wall <= 0.0 ? 0.0
                                   : static_cast<double>(answered) / wall;
    const double shed_rate =
        requests == 0 ? 0.0
                      : static_cast<double>(shed) /
                            static_cast<double>(requests);

    std::printf("service traffic: %zu requests (%zu clients, "
                "concurrency %u), %.2f req/s, p99 %.3fs\n",
                requests, clients, service.concurrency(), rps, p99);
    std::printf("  breakdown: queue wait p50 %.4fs / p99 %.4fs, "
                "exec p50 %.4fs / p99 %.4fs\n",
                percentile(queue_waits, 0.5), percentile(queue_waits, 0.99),
                percentile(exec_times, 0.5), percentile(exec_times, 0.99));
    std::printf("  terminal: %zu completed, %zu partial, %zu shed, "
                "%zu rejected, %zu failed (%zu degraded)\n",
                completed, partial, shed, rejected, failed, degraded);
    std::printf("  points: %zu evaluated, %zu store hits "
                "(hit rate %.1f%%), retries %zu point / %zu request, "
                "%zu requeues\n",
                points_evaluated, store_hits, hit_rate * 100.0,
                stats.pointRetries, stats.requestRetries, stats.requeues);
    std::printf("  response digest: %016" PRIx64 "\n", response_digest);

    if (const char* stats_path = std::getenv("HIDA_SERVICE_STATS")) {
        if (*stats_path != '\0') {
            std::FILE* f = std::fopen(stats_path, "w");
            if (f == nullptr)
                HIDA_FATAL("cannot write HIDA_SERVICE_STATS file '",
                           stats_path, "'");
            std::fprintf(
                f,
                "{\n"
                "  \"requests\": %zu,\n"
                "  \"clients\": %zu,\n"
                "  \"concurrency\": %u,\n"
                "  \"requests_per_sec\": %.3f,\n"
                "  \"p99_latency_s\": %.4f,\n"
                "  \"queue_wait_p50_s\": %.4f,\n"
                "  \"queue_wait_p99_s\": %.4f,\n"
                "  \"exec_p50_s\": %.4f,\n"
                "  \"exec_p99_s\": %.4f,\n"
                "  \"shed_rate\": %.4f,\n"
                "  \"store_hit_rate\": %.4f,\n"
                "  \"store_hits\": %zu,\n"
                "  \"store_misses\": %zu,\n"
                "  \"completed\": %zu,\n"
                "  \"partial\": %zu,\n"
                "  \"shed\": %zu,\n"
                "  \"rejected\": %zu,\n"
                "  \"failed\": %zu,\n"
                "  \"degraded\": %zu,\n"
                "  \"point_retries\": %zu,\n"
                "  \"request_retries\": %zu,\n"
                "  \"requeues\": %zu,\n"
                "  \"max_in_flight\": %zu,\n"
                "  \"service_submitted\": %zu,\n"
                "  \"service_answered\": %zu,\n"
                "  \"response_digest\": \"%016" PRIx64 "\",\n"
                "  \"interrupted\": %s\n"
                "}\n",
                requests, clients, service.concurrency(), rps, p99,
                percentile(queue_waits, 0.5), percentile(queue_waits, 0.99),
                percentile(exec_times, 0.5), percentile(exec_times, 0.99),
                shed_rate, hit_rate, store.hits, store.misses, completed,
                partial, shed, rejected, failed, degraded,
                stats.pointRetries, stats.requestRetries, stats.requeues,
                stats.maxInFlight, stats.submitted, stats.answered,
                response_digest,
                shutdownSignal() != 0 ? "true" : "false");
            std::fclose(f);
        }
    }

    // A signal-interrupted run still answered everything (checked
    // above); exit with the conventional code so wrappers see the
    // interrupt, with all state flushed.
    if (int sig = shutdownSignal())
        return shutdownExitCode(sig);
    return 0;
}
