/**
 * @file
 * Reproduces Figure 9: on-chip memory (BRAM18K) of ScaleHLS designs
 * relative to HIDA designs for ResNet-18, MobileNet, VGG-16 and MLP.
 * ScaleHLS keeps all intermediate results (and their partitions) on-chip;
 * HIDA streams tiles through external memory, so the ratio measures the
 * memory savings of the tiled dataflow lowering.
 */

#include <cstdio>
#include <string>

#include "src/driver/driver.h"
#include "src/models/dnn_models.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    std::printf("Figure 9: on-chip memory utilization vs ScaleHLS "
                "(BRAM18K, VU9P one SLR)\n");
    std::printf("%-10s %10s %10s %10s   (paper ratio)\n", "Model",
                "ScaleHLS", "HIDA", "Ratio");
    struct Row {
        const char* name;
        double paper_ratio;
    };
    for (const Row& row : {Row{"ResNet-18", 75.6}, Row{"MobileNet", 41.5},
                           Row{"VGG-16", 57.0}, Row{"MLP", 52.0}}) {
        auto rebuild = [&]() { return buildDnnModel(row.name, nullptr); };
        CompileResult hida =
            compileAutoTuned(rebuild, optionsFor(Flow::kHida), device);
        CompileResult scalehls =
            compileAutoTuned(rebuild, optionsFor(Flow::kScaleHls), device);
        double ratio =
            static_cast<double>(scalehls.qor.res.bram18k) /
            std::max<double>(static_cast<double>(hida.qor.res.bram18k), 1.0);
        std::printf("%-10s %10ld %10ld %9.1fx   (%.1fx)\n", row.name,
                    scalehls.qor.res.bram18k, hida.qor.res.bram18k, ratio,
                    row.paper_ratio);
    }
    return 0;
}
