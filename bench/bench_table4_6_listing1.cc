/**
 * @file
 * Reproduces Tables 4, 5 and 6 on the paper's Listing 1 micro-kernel:
 *  - Table 4: connection analysis (permutation and scaling maps) for the
 *    Node0->Node2 (array A, strided) and Node1->Node2 (array B) edges;
 *  - Table 5: node parallelization under IA+CA / IA / CA / naive with a
 *    maximum parallel factor of 32;
 *  - Table 6: the array partition factors and bank counts each strategy
 *    induces.
 */

#include <cstdio>

#include "src/analysis/connection.h"
#include "src/analysis/dataflow_graph.h"
#include "src/dialect/hida/hida_ops.h"
#include "src/driver/driver.h"
#include "src/frontend/loop_builder.h"
#include "src/support/utils.h"

using namespace hida;

namespace {

/** Listing 1: two producer nests and one strided consumer nest. */
OwnedModule
buildListing1()
{
    KernelBuilder kb("listing1");
    // Locals (not function args) so the arrays become hida.buffer ops whose
    // partitions Table 6 reports.
    Value* a = kb.local({32, 16}, "A");
    Value* bm = kb.local({16, 16}, "B");
    Value* c = kb.local({16, 16}, "C");

    // NODE0: load array A.
    kb.nest({32, 16}, [&](OpBuilder& b, const std::vector<Value*>& iv) {
        kb.store(b, kb.constant(b, kb.element(), 1.0), a, {iv[0], iv[1]});
    });
    // NODE1: load array B.
    kb.nest({16, 16}, [&](OpBuilder& b, const std::vector<Value*>& iv) {
        kb.store(b, kb.constant(b, kb.element(), 2.0), bm, {iv[0], iv[1]});
    });
    // NODE2: C[i][j] = A[i*2][k] * B[k][j].
    kb.nest({16, 16, 16}, [&](OpBuilder& b, const std::vector<Value*>& iv) {
        Value* strided = kb.apply(b, {iv[0]}, {2});
        Value* x = kb.load(b, a, {strided, iv[2]});
        Value* y = kb.load(b, bm, {iv[2], iv[1]});
        kb.store(b, kb.mul(b, x, y), c, {iv[0], iv[1]});
    });
    return kb.takeModule();
}

FlowOptions
strategyOptions(bool ia, bool ca)
{
    FlowOptions options = optionsFor(Flow::kHida);
    options.enableTiling = false;  // Listing 1 arrays are already on-chip
    options.maxParallelFactor = 32;
    options.strategy = {ia, ca};
    return options;
}

} // namespace

int
main()
{
    // ---- Table 4: connection analysis ----
    std::printf("Table 4: node connections of Listing 1\n");
    {
        OwnedModule module = buildListing1();
        FlowOptions options = strategyOptions(true, true);
        options.enableParallelization = false;
        compile(module.get(), options, TargetDevice::zu3eg());
        module.get().op()->walk([&](Operation* op) {
            if (isa<ScheduleOp>(op)) {
                DataflowGraph graph{ScheduleOp(op)};
                for (const Connection& conn : analyzeConnections(graph))
                    std::printf("  %s\n", conn.str().c_str());
            }
        });
        std::printf("  (paper: A S-to-T [0,_,1] T-to-S [0,2] "
                    "scale [0.5,1]/[2,_,1]; B S-to-T [_,1,0] T-to-S [2,1] "
                    "scale [1,1]/[_,1,1])\n");
    }

    // ---- Tables 5 and 6 per strategy ----
    struct Arm {
        const char* name;
        bool ia, ca;
    };
    std::printf("\nTable 5: node parallelization (max parallel factor 32)\n");
    std::printf("%-7s %-22s %-22s %-22s\n", "Arm", "Node0 factors",
                "Node1 factors", "Node2 factors");
    for (const Arm& arm : {Arm{"IA+CA", true, true}, Arm{"IA", true, false},
                           Arm{"CA", false, true},
                           Arm{"Naive", false, false}}) {
        OwnedModule module = buildListing1();
        compile(module.get(), strategyOptions(arm.ia, arm.ca),
                TargetDevice::zu3eg());
        std::vector<std::string> factor_strings;
        std::vector<std::string> partition_strings;
        module.get().op()->walk([&](Operation* op) {
            if (auto node = dynCast<NodeOp>(op)) {
                std::string text = "[";
                for (ForOp loop : nodeBand(node))
                    text += std::to_string(loop.unrollFactor()) + " ";
                text += "] pf=" +
                        std::to_string(op->intAttrOr("parallel_factor", 1));
                factor_strings.push_back(text);
            }
        });
        std::printf("%-7s", arm.name);
        for (const std::string& text : factor_strings)
            std::printf(" %-22s", text.c_str());
        std::printf("\n");
    }
    std::printf("(paper IA+CA: Node0 [4,1] Node1 [1,2] Node2 [4,8,1]; "
                "pf 4/2/32)\n");

    std::printf("\nTable 6: array partition factors and bank numbers\n");
    std::printf("%-7s %-26s %-26s %-26s\n", "Arm", "A (banks)", "B (banks)",
                "C (banks)");
    for (const Arm& arm : {Arm{"IA+CA", true, true}, Arm{"IA", true, false},
                           Arm{"CA", false, true},
                           Arm{"Naive", false, false}}) {
        OwnedModule module = buildListing1();
        compile(module.get(), strategyOptions(arm.ia, arm.ca),
                TargetDevice::zu3eg());
        std::printf("%-7s", arm.name);
        module.get().op()->walk([&](Operation* op) {
            if (auto buffer = dynCast<BufferOp>(op)) {
                std::string text = "[";
                for (int64_t f : buffer.partitionFactors())
                    text += std::to_string(f) + " ";
                text += "]x" + std::to_string(buffer.vectorFactor()) +
                        " (" + std::to_string(buffer.bankCount() *
                                              buffer.vectorFactor()) +
                        ")";
                std::printf(" %-26s", text.c_str());
            }
        });
        std::printf("\n");
    }
    std::printf("(paper banks: IA+CA 8/8/32, IA 16/16/32, CA 32/32/32, "
                "Naive 64/64/32)\n");
    return 0;
}
