/**
 * @file
 * Reproduces Table 8: PyTorch models on one SLR of a VU9P — throughput and
 * DSP efficiency for HIDA vs ScaleHLS, plus the DNNBuilder comparison.
 *
 * DNNBuilder is RTL and closed, so its DSP efficiencies are ported from
 * its paper (exactly as HIDA's own Table 8 ports them); efficiency is
 * scale-free, so the ported numbers remain comparable to our measured
 * ones. ScaleHLS designs whose on-chip memory exceeds the device by >3x
 * are reported as failed ("-"), mirroring the paper's ZFNet/YOLO rows.
 *
 * DSP efficiency follows Eq. (1): Throughput * MACs / (DSP * Frequency).
 */

#include <cstdio>
#include <map>
#include <string>

#include "src/driver/driver.h"
#include "src/models/dnn_models.h"
#include "src/support/utils.h"

using namespace hida;

namespace {

double
dspEfficiency(const CompileResult& result, int64_t macs,
              const TargetDevice& device)
{
    if (result.qor.res.dsp <= 0)
        return 0.0;
    return result.effectiveThroughput * static_cast<double>(macs) /
           (static_cast<double>(result.qor.res.dsp) * device.freqMhz * 1e6);
}

} // namespace

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    // DSP efficiencies ported from the DNNBuilder paper (Table 8).
    std::map<std::string, double> dnnbuilder_eff = {
        {"ZFNet", 0.797}, {"VGG-16", 0.962}, {"YOLO", 0.860}};

    std::printf("Table 8: PyTorch models on VU9P (one SLR) @ %.0f MHz\n",
                device.freqMhz);
    std::printf("%-10s %8s %9s %7s %12s %9s | %8s %9s | %9s %9s\n", "Model",
                "Comp(s)", "LUT", "DSP", "Thr(smp/s)", "DSPeff",
                "ScaleHLS", "(x)", "DNNB-eff", "(x)");

    std::vector<double> scale_ratios, dnnb_ratios;
    for (const std::string& name : dnnModelNames()) {
        int64_t macs = 0;
        auto rebuild = [&]() { return buildDnnModel(name, &macs); };

        CompileResult hida = compileAutoTuned(
            rebuild, optionsFor(Flow::kHida), device);
        double hida_eff = dspEfficiency(hida, macs, device);

        bool scale_failed;
        CompileResult scalehls;
        {
            OwnedModule probe = rebuild();
            scale_failed = !scaleHlsSupports(probe.get());
        }
        if (!scale_failed)
            scalehls = compileAutoTuned(rebuild, optionsFor(Flow::kScaleHls),
                                        device);

        std::printf("%-10s %8.2f %9ld %7ld %12.2f %8.1f%% |", name.c_str(),
                    hida.compileSeconds, hida.qor.res.lut, hida.qor.res.dsp,
                    hida.effectiveThroughput, hida_eff * 100.0);
        if (scale_failed) {
            std::printf(" %8s %9s |", "-", "-");
        } else {
            double ratio = hida.effectiveThroughput /
                           std::max(scalehls.effectiveThroughput, 1e-9);
            scale_ratios.push_back(ratio);
            std::printf(" %8.2f %8.2fx |", scalehls.effectiveThroughput,
                        ratio);
        }
        auto it = dnnbuilder_eff.find(name);
        if (it != dnnbuilder_eff.end()) {
            double ratio = hida_eff / it->second;
            dnnb_ratios.push_back(ratio);
            std::printf(" %8.1f%% %8.2fx\n", it->second * 100.0, ratio);
        } else {
            std::printf(" %9s %9s\n", "-", "-");
        }
    }
    std::printf("\nGeo-mean HIDA/ScaleHLS throughput: %.2fx (paper: 8.54x)\n",
                geomean(scale_ratios));
    std::printf("Geo-mean HIDA/DNNBuilder DSP efficiency: %.2fx "
                "(paper: 1.07x)\n",
                geomean(dnnb_ratios));
    return 0;
}
