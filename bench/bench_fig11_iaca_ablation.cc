/**
 * @file
 * Reproduces Figure 11: the IA/CA parallelization ablation on ResNet-18.
 * Four arms (IA+CA, IA-only, CA-only, naive) swept over the maximum
 * parallel factor; reports DSP, BRAM and effective throughput. The paper's
 * headline: only IA+CA keeps scaling — at PF 64 the other arms fall back
 * to flawed (over-subscribed, misaligned) designs; where all arms work,
 * IA+CA spends several-fold less DSP/BRAM for the same throughput.
 *
 * Points are independent full compiles; the sweep runs on the sharded
 * DSE engine with the (arm, PF) grid and prints in grid order, so the
 * output is identical at any HIDA_BENCH_THREADS.
 */

#include <cstdio>
#include <iterator>

#include "src/driver/driver.h"
#include "src/dse/sweep.h"
#include "src/models/dnn_models.h"
#include "src/support/diagnostics.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    struct Arm {
        const char* name;
        bool ia, ca;
    };
    const Arm arms[] = {{"IA+CA", true, true},
                        {"IA", true, false},
                        {"CA", false, true},
                        {"Naive", false, false}};
    DesignPointGrid grid;
    grid.addAxis("arm", {0, 1, 2, 3});
    grid.addAxis("pf", {1, 4, 16, 64, 256});
    // The arm axis indexes arms[]; keep the two in lockstep.
    HIDA_ASSERT(grid.axis(0).values.size() == std::size(arms),
                "arm axis and arms[] diverged");

    std::vector<CompileResult> results = ShardedSweep::run<CompileResult>(
        grid,
        [&]() {
            return [&device, &arms](size_t, const std::vector<int64_t>& vals) {
                OwnedModule module = buildDnnModel("ResNet-18", nullptr);
                FlowOptions options = optionsFor(Flow::kHida);
                options.maxParallelFactor = vals[1];
                const Arm& arm = arms[vals[0]];
                options.strategy = {arm.ia, arm.ca};
                return compile(module.get(), options, device);
            };
        },
        dseThreadCount(), sweepScheduleFromEnv());

    std::printf("Figure 11: ResNet-18 IA/CA ablation (VU9P one SLR)\n");
    std::printf("%-7s %6s %8s %8s %14s %10s\n", "Arm", "PF", "DSP", "BRAM",
                "EffThr(smp/s)", "Overload");
    std::vector<int64_t> vals;
    for (size_t i = 0; i < grid.size(); ++i) {
        grid.decode(i, vals);
        const Arm& arm = arms[vals[0]];
        const CompileResult& result = results[i];
        std::printf("%-7s %6ld %8ld %8ld %14.2f %9.2fx\n", arm.name, vals[1],
                    result.qor.res.dsp, result.qor.res.bram18k,
                    result.effectiveThroughput, result.overload);
        if (vals[1] == 256)
            std::printf("\n");
    }
    return 0;
}
