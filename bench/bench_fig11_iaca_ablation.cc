/**
 * @file
 * Reproduces Figure 11: the IA/CA parallelization ablation on ResNet-18.
 * Four arms (IA+CA, IA-only, CA-only, naive) swept over the maximum
 * parallel factor; reports DSP, BRAM and effective throughput. The paper's
 * headline: only IA+CA keeps scaling — at PF 64 the other arms fall back
 * to flawed (over-subscribed, misaligned) designs; where all arms work,
 * IA+CA spends several-fold less DSP/BRAM for the same throughput.
 */

#include <cstdio>

#include "src/driver/driver.h"
#include "src/models/dnn_models.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    struct Arm {
        const char* name;
        bool ia, ca;
    };
    const Arm arms[] = {{"IA+CA", true, true},
                        {"IA", true, false},
                        {"CA", false, true},
                        {"Naive", false, false}};
    const int64_t factors[] = {1, 4, 16, 64, 256};

    std::printf("Figure 11: ResNet-18 IA/CA ablation (VU9P one SLR)\n");
    std::printf("%-7s %6s %8s %8s %14s %10s\n", "Arm", "PF", "DSP", "BRAM",
                "EffThr(smp/s)", "Overload");
    for (const Arm& arm : arms) {
        for (int64_t pf : factors) {
            OwnedModule module = buildDnnModel("ResNet-18", nullptr);
            FlowOptions options = optionsFor(Flow::kHida);
            options.maxParallelFactor = pf;
            options.strategy = {arm.ia, arm.ca};
            CompileResult result = compile(module.get(), options, device);
            std::printf("%-7s %6ld %8ld %8ld %14.2f %9.2fx\n", arm.name, pf,
                        result.qor.res.dsp, result.qor.res.bram18k,
                        result.effectiveThroughput, result.overload);
        }
        std::printf("\n");
    }
    return 0;
}
