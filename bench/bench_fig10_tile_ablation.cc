/**
 * @file
 * Reproduces Figure 10: ResNet-18 ablation sweeping the maximum parallel
 * factor (1..256) against the tile size (2..32), reporting DSP count,
 * BRAM18K count and throughput per point. The paper's observations to
 * check: DSP/memory/throughput all grow with the parallel factor; tiny
 * tiles inflate DSP via address generation; throughput correlates
 * positively with tile size at large parallel factors.
 *
 * Each point is an independent full compile, so the sweep runs on the
 * sharded DSE engine: every worker builds and compiles its own modules,
 * and results are printed in grid order — identical output at any
 * HIDA_BENCH_THREADS.
 */

#include <cstdio>

#include "src/driver/driver.h"
#include "src/dse/sweep.h"
#include "src/models/dnn_models.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    DesignPointGrid grid;
    grid.addAxis("pf", {1, 4, 16, 64, 256});
    grid.addAxis("tile", {2, 4, 8, 16, 32});

    std::vector<CompileResult> results = ShardedSweep::run<CompileResult>(
        grid,
        [&]() {
            return [&device](size_t, const std::vector<int64_t>& vals) {
                OwnedModule module = buildDnnModel("ResNet-18", nullptr);
                FlowOptions options = optionsFor(Flow::kHida);
                options.maxParallelFactor = vals[0];
                options.tileSize = vals[1];
                return compile(module.get(), options, device);
            };
        },
        dseThreadCount(), sweepScheduleFromEnv());

    std::printf("Figure 10: ResNet-18 parallel factor x tile size ablation "
                "(VU9P one SLR)\n");
    std::printf("%8s %6s %8s %8s %12s\n", "PF", "Tile", "DSP", "BRAM",
                "Thr(smp/s)");
    std::vector<int64_t> vals;
    for (size_t i = 0; i < grid.size(); ++i) {
        grid.decode(i, vals);
        const CompileResult& result = results[i];
        std::printf("%8ld %6ld %8ld %8ld %12.2f\n", vals[0], vals[1],
                    result.qor.res.dsp, result.qor.res.bram18k,
                    result.qor.throughput(device));
    }
    return 0;
}
