/**
 * @file
 * Reproduces Figure 10: ResNet-18 ablation sweeping the maximum parallel
 * factor (1..256) against the tile size (2..32), reporting DSP count,
 * BRAM18K count and throughput per point. The paper's observations to
 * check: DSP/memory/throughput all grow with the parallel factor; tiny
 * tiles inflate DSP via address generation; throughput correlates
 * positively with tile size at large parallel factors.
 */

#include <cstdio>

#include "src/driver/driver.h"
#include "src/models/dnn_models.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    const int64_t factors[] = {1, 4, 16, 64, 256};
    const int64_t tiles[] = {2, 4, 8, 16, 32};

    std::printf("Figure 10: ResNet-18 parallel factor x tile size ablation "
                "(VU9P one SLR)\n");
    std::printf("%8s %6s %8s %8s %12s\n", "PF", "Tile", "DSP", "BRAM",
                "Thr(smp/s)");
    for (int64_t pf : factors) {
        for (int64_t tile : tiles) {
            OwnedModule module = buildDnnModel("ResNet-18", nullptr);
            FlowOptions options = optionsFor(Flow::kHida);
            options.maxParallelFactor = pf;
            options.tileSize = tile;
            CompileResult result = compile(module.get(), options, device);
            std::printf("%8ld %6ld %8ld %8ld %12.2f\n", pf, tile,
                        result.qor.res.dsp, result.qor.res.bram18k,
                        result.qor.throughput(device));
        }
    }
    return 0;
}
