#!/usr/bin/env bash
# Kill-and-restart soak of the DSE service core (the CI `service-soak`
# job; also runnable locally):
#
#   Phase A  clean traffic against a fresh persistent QoR store — every
#            request must be terminally answered (the bench exits
#            non-zero on any totality violation).
#   Phase B  the same traffic under deterministic fault injection
#            (HIDA_FAULT_INJECT covering every site), SIGTERMed mid-run:
#            the service must drain gracefully — in-flight finished
#            early, queued answered `shutdown`, store flushed — and the
#            bench must exit 143 (128+SIGTERM) with totality intact.
#   Phase C  a restarted process on the same store serves the identical
#            workload warm: the store hit rate must exceed 50% (phase A
#            already paid for every point, so a healthy store serves
#            nearly everything from disk).
#   Phase D  determinism: the same workload is replayed at request
#            concurrency 1, 2 and 4 — clean and under fault injection —
#            and the bench's response_digest (an order-independent fold
#            of every per-request payload) must be bit-identical across
#            all three. Scheduling may reorder work; it must never
#            change an answer.
#
# Phases A-C run at HIDA_SERVICE_CONCURRENCY (default 4 here so the
# TSan job races the multi-lane scheduler, not just the sweep shards).
# Knobs: HIDA_SERVICE_REQUESTS scales phases A, C and D (default 24 —
# small enough for sanitizer builds); phase B submits 500x that so the
# SIGTERM is guaranteed to land mid-run — after the signal, the
# still-unsubmitted tail drains as instant `shutdown` rejections, so a
# big count costs milliseconds, not minutes. SOAK_KILL_DELAY_S moves
# the SIGTERM; BUILD_DIR picks the tree (a TSan build makes phase B a
# data-race hunt). Work files live in a mktemp dir and are removed on
# success.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
BENCH="$BUILD_DIR/bench_service_traffic"
REQUESTS="${HIDA_SERVICE_REQUESTS:-24}"
FAULT_REQUESTS="${SOAK_FAULT_REQUESTS:-$((REQUESTS * 500))}"
KILL_DELAY="${SOAK_KILL_DELAY_S:-2}"
CONCURRENCY="${HIDA_SERVICE_CONCURRENCY:-4}"
export HIDA_SERVICE_CONCURRENCY="$CONCURRENCY"

if [[ ! -x "$BENCH" ]]; then
    echo "FAIL: $BENCH not built (cmake --build $BUILD_DIR" \
         "--target bench_service_traffic)" >&2
    exit 1
fi

WORK="$(mktemp -d)"
STORE="$WORK/qor_store.bin"
trap 'rm -rf "$WORK"' EXIT

# ---- Phase A: clean traffic, cold store -----------------------------------
echo "== phase A: clean traffic ($REQUESTS requests, cold store," \
     "concurrency $CONCURRENCY) =="
HIDA_QOR_STORE="$STORE" HIDA_SERVICE_REQUESTS="$REQUESTS" \
    HIDA_SERVICE_STATS="$WORK/a.json" "$BENCH"
[[ -s "$STORE" ]] || { echo "FAIL: phase A left no store file" >&2; exit 1; }

# ---- Phase B: fault traffic, SIGTERM mid-run ------------------------------
echo "== phase B: fault traffic ($FAULT_REQUESTS requests) + SIGTERM" \
     "after ${KILL_DELAY}s =="
HIDA_FAULT_INJECT=any:42:0.01 HIDA_QOR_STORE="$STORE" \
    HIDA_SERVICE_REQUESTS="$FAULT_REQUESTS" \
    HIDA_SERVICE_STATS="$WORK/b.json" "$BENCH" &
pid=$!
sleep "$KILL_DELAY"
kill -TERM "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
if [[ "$rc" -eq 143 ]]; then
    echo "OK: phase B drained gracefully on SIGTERM (exit 143)"
elif [[ "$rc" -eq 0 ]]; then
    # The run beat the kill — totality still proven, but say so: the
    # kill delay (or request count) should be tuned up on this machine.
    echo "WARN: phase B finished before the SIGTERM landed; raise" \
         "SOAK_FAULT_REQUESTS or lower SOAK_KILL_DELAY_S for a real" \
         "mid-run kill" >&2
else
    echo "FAIL: phase B exited $rc (expected 143 after graceful drain," \
         "or 0)" >&2
    exit 1
fi
[[ -s "$WORK/b.json" ]] ||
    { echo "FAIL: phase B wrote no stats (drain lost the flush?)" >&2
      exit 1; }

# ---- Phase C: restart, warm store -----------------------------------------
echo "== phase C: restarted process, warm store =="
HIDA_QOR_STORE="$STORE" HIDA_SERVICE_REQUESTS="$REQUESTS" \
    HIDA_SERVICE_STATS="$WORK/c.json" "$BENCH"

# The acceptance bar: a restart on the surviving store must warm-start
# with a hit rate above 0.5.
hit_rate=$(grep -oE '"store_hit_rate": [0-9.]+' "$WORK/c.json" |
           grep -oE '[0-9.]+$')
ok=$(awk "BEGIN { print ($hit_rate > 0.5) ? 1 : 0 }")
if [[ "$ok" -ne 1 ]]; then
    echo "FAIL: warm-start hit rate $hit_rate <= 0.5 — the store did" \
         "not survive the kill/restart cycle" >&2
    exit 1
fi
echo "OK: warm-start hit rate $hit_rate"

# ---- Phase D: determinism across concurrency ------------------------------
echo "== phase D: response determinism across concurrency 1/2/4 =="

# Run the bench workload at a given concurrency (fresh store each run so
# every leg sees identical conditions) and print its response_digest.
run_digest() {
    local conc="$1" fault="$2" tag="$3"
    local out="$WORK/d_${tag}_c${conc}.json"
    local -a fault_env=(-u HIDA_FAULT_INJECT)
    [[ -n "$fault" ]] && fault_env=(HIDA_FAULT_INJECT="$fault")
    env "${fault_env[@]}" HIDA_SERVICE_CONCURRENCY="$conc" \
        HIDA_QOR_STORE="$WORK/d_${tag}_c${conc}.store.bin" \
        HIDA_SERVICE_REQUESTS="$REQUESTS" \
        HIDA_SERVICE_STATS="$out" "$BENCH" > /dev/null
    grep -oE '"response_digest": "[0-9a-f]+"' "$out" |
        grep -oE '[0-9a-f]{16}'
}

for leg in clean: faulted:any:42:0.05; do
    tag="${leg%%:*}"
    fault="${leg#*:}"
    ref=""
    for conc in 1 2 4; do
        digest="$(run_digest "$conc" "$fault" "$tag")"
        if [[ -z "$digest" ]]; then
            echo "FAIL: $tag run at concurrency $conc emitted no" \
                 "response_digest" >&2
            exit 1
        fi
        if [[ -z "$ref" ]]; then
            ref="$digest"
        elif [[ "$digest" != "$ref" ]]; then
            echo "FAIL: $tag response_digest diverged at concurrency" \
                 "$conc ($ref vs $digest) — scheduling changed an" \
                 "answer" >&2
            exit 1
        fi
    done
    echo "OK: $tag responses bit-identical at concurrency 1/2/4" \
         "(digest $ref)"
done

echo "OK: service soak passed (warm-start hit rate $hit_rate," \
     "deterministic across concurrency)"
