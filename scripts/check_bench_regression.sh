#!/usr/bin/env bash
# Bench-regression gate for the tracked DSE and service metrics.
#
# Compares a freshly produced BENCH_dse.json (scripts/bench.sh output)
# against a baseline and fails when either
#   - serial-normalized throughput (points_per_sec_serial, falling back to
#     points_per_sec for pre-sharding baselines) dropped by more than
#     MAX_SLOWDOWN_PCT (default 20%) — the serial metric is compared so a
#     runner with fewer cores than the baseline recorder cannot trip the
#     gate via thread count alone, or
#   - output_sha256 drifted (the sweep's Pareto/Table-2 output changed —
#     a perf "win" that changes results is a correctness bug, not a win).
#
# It also gates BENCH_service.json (the DseService traffic bench):
#   - requests_per_sec must retain (100 - MAX_SLOWDOWN_PCT)% of the
#     baseline, and
#   - the totality counters must balance: every submitted request must
#     have received a terminal response (service_submitted ==
#     service_answered). A hung or dropped request is a scheduler bug
#     that a healthy-looking rps number can hide.
#
# Usage:
#   scripts/check_bench_regression.sh                      # both gates vs HEAD
#   scripts/check_bench_regression.sh [baseline] [fresh]   # DSE pair only
#   scripts/check_bench_regression.sh --self-test
#
# Defaults: baselines = the JSONs as checked in at HEAD (so it works
# after bench.sh overwrote the working-tree copies), fresh = the
# working-tree JSONs. CI runs this right after scripts/bench.sh; it is
# equally callable locally.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
MAX_SLOWDOWN_PCT="${MAX_SLOWDOWN_PCT:-20}"

# Extract a scalar field from the flat one-key-per-line JSON bench.sh emits
# (no jq dependency: the gate must run on bare runners and dev machines).
json_field() {
    local file="$1" key="$2" value
    value=$(sed -n 's/.*"'"$key"'": *"\{0,1\}\([^",}]*\)"\{0,1\}.*/\1/p' \
        "$file" | head -n 1)
    if [[ -z "$value" ]]; then
        echo "error: field '$key' not found in $file" >&2
        return 1
    fi
    printf '%s\n' "$value"
}

# Serial-normalized throughput: points_per_sec_serial when the file has
# it, else points_per_sec (baselines recorded before sweeps were sharded).
serial_pps_field() {
    local file="$1"
    json_field "$file" points_per_sec_serial 2>/dev/null ||
        json_field "$file" points_per_sec
}

compare() {
    local baseline="$1" fresh="$2"
    local base_pps fresh_pps base_sha fresh_sha
    base_pps=$(serial_pps_field "$baseline")
    fresh_pps=$(serial_pps_field "$fresh")
    base_sha=$(json_field "$baseline" output_sha256)
    fresh_sha=$(json_field "$fresh" output_sha256)

    local status=0
    if [[ "$base_sha" != "$fresh_sha" ]]; then
        echo "FAIL: output_sha256 drifted ($base_sha -> $fresh_sha):" \
             "the DSE sweep no longer produces identical results" >&2
        status=1
    fi

    # fresh must retain at least (100 - MAX_SLOWDOWN_PCT)% of baseline pps.
    local ok
    ok=$(awk "BEGIN { print ($fresh_pps * 100 >= \
        $base_pps * (100 - $MAX_SLOWDOWN_PCT)) ? 1 : 0 }")
    local change
    change=$(awk "BEGIN { printf \"%+.1f\", \
        ($fresh_pps - $base_pps) * 100 / $base_pps }")
    if [[ "$ok" != 1 ]]; then
        echo "FAIL: serial points/sec regressed ${change}%" \
             "($base_pps -> $fresh_pps, gate: -${MAX_SLOWDOWN_PCT}%)" >&2
        status=1
    else
        echo "serial points/sec ${change}% ($base_pps -> $fresh_pps)," \
             "within the -${MAX_SLOWDOWN_PCT}% gate"
    fi
    if [[ $status -eq 0 ]]; then
        echo "OK: output_sha256 identical, no perf regression"
    fi
    return $status
}

compare_service() {
    local baseline="$1" fresh="$2"
    local status=0

    # Totality first: the fresh run must account for every request it
    # submitted. Only the fresh file is checked — baselines recorded
    # before the concurrent scheduler landed lack these counters.
    local submitted answered
    submitted=$(json_field "$fresh" service_submitted)
    answered=$(json_field "$fresh" service_answered)
    if [[ "$submitted" != "$answered" ]]; then
        echo "FAIL: service totality broken ($submitted submitted," \
             "$answered answered): some requests never got a terminal" \
             "response" >&2
        status=1
    fi

    local base_rps fresh_rps
    base_rps=$(json_field "$baseline" requests_per_sec)
    fresh_rps=$(json_field "$fresh" requests_per_sec)
    local ok change
    ok=$(awk "BEGIN { print ($fresh_rps * 100 >= \
        $base_rps * (100 - $MAX_SLOWDOWN_PCT)) ? 1 : 0 }")
    change=$(awk "BEGIN { printf \"%+.1f\", \
        ($fresh_rps - $base_rps) * 100 / $base_rps }")
    if [[ "$ok" != 1 ]]; then
        echo "FAIL: service requests/sec regressed ${change}%" \
             "($base_rps -> $fresh_rps, gate: -${MAX_SLOWDOWN_PCT}%)" >&2
        status=1
    else
        echo "service requests/sec ${change}% ($base_rps -> $fresh_rps)," \
             "within the -${MAX_SLOWDOWN_PCT}% gate"
    fi
    if [[ $status -eq 0 ]]; then
        echo "OK: service totality holds, no service perf regression"
    fi
    return $status
}

self_test() {
    local dir pass=0
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' RETURN
    cat > "$dir/base.json" <<'EOF'
{
  "points_per_sec": 1000.0,
  "output_sha256": "aaaa"
}
EOF
    # Identical run passes.
    sed 's/1000.0/1001.5/' "$dir/base.json" > "$dir/same.json"
    compare "$dir/base.json" "$dir/same.json" > /dev/null ||
        { echo "self-test: identical run should pass" >&2; pass=1; }
    # An injected 25% slowdown must trip the 20% gate.
    sed 's/1000.0/750.0/' "$dir/base.json" > "$dir/slow.json"
    if compare "$dir/base.json" "$dir/slow.json" > /dev/null 2>&1; then
        echo "self-test: 25% slowdown should fail" >&2
        pass=1
    fi
    # A 10% slowdown stays within the gate.
    sed 's/1000.0/900.0/' "$dir/base.json" > "$dir/mild.json"
    compare "$dir/base.json" "$dir/mild.json" > /dev/null ||
        { echo "self-test: 10% slowdown should pass" >&2; pass=1; }
    # Output drift fails even when faster.
    sed -e 's/1000.0/2000.0/' -e 's/aaaa/bbbb/' "$dir/base.json" \
        > "$dir/drift.json"
    if compare "$dir/base.json" "$dir/drift.json" > /dev/null 2>&1; then
        echo "self-test: sha drift should fail" >&2
        pass=1
    fi
    # A sharded fresh run on a smaller machine: parallel pps collapsed,
    # serial pps held — the serial-normalized gate must pass against a
    # pre-sharding baseline (which only has points_per_sec).
    cat > "$dir/sharded.json" <<'EOF'
{
  "points_per_sec": 500.0,
  "points_per_sec_serial": 980.0,
  "threads": 1,
  "output_sha256": "aaaa"
}
EOF
    compare "$dir/base.json" "$dir/sharded.json" > /dev/null ||
        { echo "self-test: serial-normalized run should pass" >&2; pass=1; }
    # ...and a genuine serial regression in a sharded run must still fail.
    sed 's/980.0/700.0/' "$dir/sharded.json" > "$dir/sharded_slow.json"
    if compare "$dir/base.json" "$dir/sharded_slow.json" > /dev/null 2>&1
    then
        echo "self-test: serial regression should fail" >&2
        pass=1
    fi
    # Service gate: identical run passes, totality holds.
    cat > "$dir/svc_base.json" <<'EOF'
{
  "requests_per_sec": 1000.0,
  "service_submitted": 24,
  "service_answered": 24
}
EOF
    sed 's/1000.0/1010.0/' "$dir/svc_base.json" > "$dir/svc_same.json"
    compare_service "$dir/svc_base.json" "$dir/svc_same.json" > /dev/null ||
        { echo "self-test: identical service run should pass" >&2; pass=1; }
    # A 25% requests/sec drop trips the gate.
    sed 's/1000.0/750.0/' "$dir/svc_base.json" > "$dir/svc_slow.json"
    if compare_service "$dir/svc_base.json" "$dir/svc_slow.json" \
        > /dev/null 2>&1
    then
        echo "self-test: 25% service slowdown should fail" >&2
        pass=1
    fi
    # An unanswered request fails even when the run got faster.
    sed -e 's/1000.0/2000.0/' -e 's/"service_answered": 24/"service_answered": 23/' \
        "$dir/svc_base.json" > "$dir/svc_hung.json"
    if compare_service "$dir/svc_base.json" "$dir/svc_hung.json" \
        > /dev/null 2>&1
    then
        echo "self-test: unanswered service request should fail" >&2
        pass=1
    fi
    if [[ $pass -eq 0 ]]; then
        echo "self-test: all 9 gate scenarios behave as expected"
    fi
    return $pass
}

if [[ "${1:-}" == "--self-test" ]]; then
    self_test
    exit $?
fi

if [[ $# -gt 0 ]]; then
    # Explicit pair: gate just that DSE baseline/fresh combination.
    compare "$1" "${2:-$REPO_ROOT/BENCH_dse.json}"
    exit $?
fi

# Default: gate both tracked bench files against the checked-in JSONs at
# HEAD (bench.sh has typically already overwritten the working-tree
# copies with the fresh numbers).
BASE_DSE=$(mktemp)
BASE_SVC=$(mktemp)
trap 'rm -f "$BASE_DSE" "$BASE_SVC"' EXIT
git -C "$REPO_ROOT" show HEAD:BENCH_dse.json > "$BASE_DSE"
git -C "$REPO_ROOT" show HEAD:BENCH_service.json > "$BASE_SVC"

STATUS=0
compare "$BASE_DSE" "$REPO_ROOT/BENCH_dse.json" || STATUS=1
compare_service "$BASE_SVC" "$REPO_ROOT/BENCH_service.json" || STATUS=1
exit $STATUS
