#!/usr/bin/env bash
# Build the Release tree and run the two tracked performance benchmarks:
#
#   bench_fig1_lenet_dse   - the 24k-point LeNet DSE sweep (Figure 1 /
#                            Table 2); its wall time is the headline
#                            compiler-performance metric.
#   bench_compile_time     - google-benchmark pipeline microbenchmarks
#                            (Tables 7/8 compile-time columns).
#
# Emits BENCH_dse.json (points/sec of the DSE sweep, the raw output
# hash so result drift is detectable, and the active search strategy's
# proposed/evaluated/coverage stats) and BENCH_compile_time.json (the
# google-benchmark JSON report). Run from anywhere inside the repo.
#
# HIDA_DSE_STRATEGY selects the sweep's search strategy (exhaustive,
# the default, is the regression-gated trajectory; random/lhs/evolve
# sample the grid — their output hash intentionally differs from the
# exhaustive baseline). An unknown strategy fails here with exit 65
# (the user-error code the benches themselves use) before any build.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
cd "$REPO_ROOT"

# Validate the strategy before spending anything on a build: a typo'd
# HIDA_DSE_STRATEGY must fail immediately, never fall back to a silent
# (and expensive) exhaustive run.
DSE_STRATEGY="${HIDA_DSE_STRATEGY:-exhaustive}"
case "$DSE_STRATEGY" in
    exhaustive|random|lhs|evolve) ;;
    *)
        echo "FAIL: unknown HIDA_DSE_STRATEGY '$DSE_STRATEGY'" \
             "(expected exhaustive|random|lhs|evolve)" >&2
        exit 65
        ;;
esac

# Same early validation for the sweep-schedule knobs: ordering (which
# enumeration order workers walk) and scheduler (fixed shards vs work
# stealing). Neither may change output_sha256 — the serial/sharded hash
# comparison below re-proves that on every run.
DSE_ORDER="${HIDA_DSE_ORDER:-gray}"
case "$DSE_ORDER" in
    gray|row-major) ;;
    *)
        echo "FAIL: unknown HIDA_DSE_ORDER '$DSE_ORDER'" \
             "(expected gray|row-major)" >&2
        exit 65
        ;;
esac
DSE_SCHED="${HIDA_DSE_SCHED:-steal}"
case "$DSE_SCHED" in
    steal|static) ;;
    *)
        echo "FAIL: unknown HIDA_DSE_SCHED '$DSE_SCHED'" \
             "(expected steal|static)" >&2
        exit 65
        ;;
esac
echo "DSE strategy: $DSE_STRATEGY (seed ${HIDA_DSE_SEED:-42}," \
     "budget ${HIDA_DSE_BUDGET:-10% of grid}," \
     "order $DSE_ORDER, scheduler $DSE_SCHED)"

# Fail loudly, never partially: every BENCH json is staged to a .tmp and
# only renamed into place after its producer succeeded, and the ERR trap
# removes stale temps — an aborted run can never leave a half-written
# (or worse, plausible-but-wrong) baseline for the regression gate to
# diff against.
STAGED_TMPS=()
on_error() {
    local line=$1
    rm -f "${STAGED_TMPS[@]}"
    echo "FAIL: bench.sh aborted at line $line; no BENCH json was" \
         "(re)written" >&2
}
trap 'on_error $LINENO' ERR

# Honor a compiler launcher (CI sets CMAKE_CXX_COMPILER_LAUNCHER=ccache so
# matrix rebuilds are warm); plain local runs are unaffected.
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release)
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER")
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target bench_fig1_lenet_dse bench_compile_time bench_service_traffic

# ---- DSE sweep: wall time over the fixed 24,000-point grid ----------------
# Two timed runs: serial (HIDA_BENCH_THREADS=1, the machine-comparable
# trajectory metric the regression gate normalizes on) and sharded
# (HIDA_BENCH_THREADS when set, else all cores). The sweep's merge is
# deterministic in grid order, so both runs must hash identically — a
# mismatch is a sharding correctness bug and fails the script here.
DSE_POINTS=24000
DSE_OUT="$BUILD_DIR/bench_fig1_lenet_dse.out"
HW_CONCURRENCY=$(nproc)
THREADS="${HIDA_BENCH_THREADS:-$HW_CONCURRENCY}"

start_ns=$(date +%s%N)
HIDA_BENCH_THREADS=1 HIDA_DSE_ORDER="$DSE_ORDER" HIDA_DSE_SCHED="$DSE_SCHED" \
    "$BUILD_DIR/bench_fig1_lenet_dse" > "$DSE_OUT.serial"
end_ns=$(date +%s%N)
serial_wall_s=$(awk "BEGIN { printf \"%.3f\", ($end_ns - $start_ns) / 1e9 }")
serial_pps=$(awk "BEGIN { printf \"%.1f\", $DSE_POINTS / $serial_wall_s }")
serial_sha=$(sha256sum "$DSE_OUT.serial" | cut -d' ' -f1)

# The sharded run also emits the strategy's machine-readable stats
# (points proposed/evaluated, Pareto coverage, cache hit rate), folded
# into BENCH_dse.json below.
DSE_STATS="$BUILD_DIR/bench_fig1_lenet_dse.stats.json"
rm -f "$DSE_STATS"
start_ns=$(date +%s%N)
HIDA_BENCH_THREADS="$THREADS" HIDA_DSE_STATS="$DSE_STATS" \
    HIDA_DSE_ORDER="$DSE_ORDER" HIDA_DSE_SCHED="$DSE_SCHED" \
    "$BUILD_DIR/bench_fig1_lenet_dse" > "$DSE_OUT"
end_ns=$(date +%s%N)
wall_s=$(awk "BEGIN { printf \"%.3f\", ($end_ns - $start_ns) / 1e9 }")
pps=$(awk "BEGIN { printf \"%.1f\", $DSE_POINTS / $wall_s }")
out_sha=$(sha256sum "$DSE_OUT" | cut -d' ' -f1)

if [[ "$out_sha" != "$serial_sha" ]]; then
    echo "FAIL: sharded sweep (threads=$THREADS) output drifted from the" \
         "serial run ($serial_sha -> $out_sha)" >&2
    exit 1
fi

STAGED_TMPS+=("$REPO_ROOT/BENCH_dse.json.tmp")
cat > "$REPO_ROOT/BENCH_dse.json.tmp" <<EOF
{
  "bench": "bench_fig1_lenet_dse",
  "points": $DSE_POINTS,
  "wall_seconds": $wall_s,
  "points_per_sec": $pps,
  "wall_seconds_serial": $serial_wall_s,
  "points_per_sec_serial": $serial_pps,
  "threads": $THREADS,
  "hardware_concurrency": $HW_CONCURRENCY,
  "order": "$DSE_ORDER",
  "scheduler": "$DSE_SCHED",
  "output_sha256": "$out_sha",
  "strategy": $(cat "$DSE_STATS"),
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "commit": "$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
}
EOF
mv "$REPO_ROOT/BENCH_dse.json.tmp" "$REPO_ROOT/BENCH_dse.json"
echo "DSE sweep: serial ${serial_wall_s}s (${serial_pps} pps)," \
     "threads=$THREADS ${wall_s}s (${pps} pps), identical output"

# ---- Service traffic: requests/sec, p99, shed + store hit rate ------------
# The fig1/fig10/fig11-shaped closed-loop traffic mix through one
# DseService (docs/service.md), against a fresh persistent QoR store.
# Totality (every request terminally answered) is checked by the bench
# itself — a violation fails this script right here. The kill/restart
# warm-start leg lives in scripts/service_soak.sh, not in this timing
# run.
SERVICE_STATS="$BUILD_DIR/bench_service_traffic.stats.json"
SERVICE_STORE="$BUILD_DIR/bench_service_traffic.store.bin"
rm -f "$SERVICE_STATS" "$SERVICE_STORE" "$SERVICE_STORE.tmp"
HIDA_QOR_STORE="$SERVICE_STORE" HIDA_SERVICE_STATS="$SERVICE_STATS" \
    HIDA_SERVICE_REQUESTS="${HIDA_SERVICE_REQUESTS:-24}" \
    "$BUILD_DIR/bench_service_traffic"

STAGED_TMPS+=("$REPO_ROOT/BENCH_service.json.tmp")
cat > "$REPO_ROOT/BENCH_service.json.tmp" <<EOF
{
  "bench": "bench_service_traffic",
  "threads": $THREADS,
  "hardware_concurrency": $HW_CONCURRENCY,
  "service": $(cat "$SERVICE_STATS"),
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "commit": "$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
}
EOF
mv "$REPO_ROOT/BENCH_service.json.tmp" "$REPO_ROOT/BENCH_service.json"
echo "Wrote BENCH_service.json"

# ---- Pipeline compile-time microbenchmarks --------------------------------
STAGED_TMPS+=("$REPO_ROOT/BENCH_compile_time.json.tmp")
"$BUILD_DIR/bench_compile_time" \
    --benchmark_format=json \
    --benchmark_out="$REPO_ROOT/BENCH_compile_time.json.tmp" \
    --benchmark_out_format=json > /dev/null
# Record the run's thread configuration here too (the microbenchmarks are
# single-threaded, but consumers diffing the two files should see one
# consistent machine description).
sed -i "0,/{/s//{\n  \"threads\": $THREADS,\n  \"hardware_concurrency\": $HW_CONCURRENCY,/" \
    "$REPO_ROOT/BENCH_compile_time.json.tmp"
mv "$REPO_ROOT/BENCH_compile_time.json.tmp" "$REPO_ROOT/BENCH_compile_time.json"
echo "Wrote BENCH_dse.json and BENCH_compile_time.json"
