#!/usr/bin/env bash
# Build the Release tree and run the two tracked performance benchmarks:
#
#   bench_fig1_lenet_dse   - the 24k-point LeNet DSE sweep (Figure 1 /
#                            Table 2); its wall time is the headline
#                            compiler-performance metric.
#   bench_compile_time     - google-benchmark pipeline microbenchmarks
#                            (Tables 7/8 compile-time columns).
#
# Emits BENCH_dse.json (points/sec of the DSE sweep plus the raw output
# hash so result drift is detectable) and BENCH_compile_time.json (the
# google-benchmark JSON report). Run from anywhere inside the repo.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
cd "$REPO_ROOT"

# Honor a compiler launcher (CI sets CMAKE_CXX_COMPILER_LAUNCHER=ccache so
# matrix rebuilds are warm); plain local runs are unaffected.
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release)
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER")
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target bench_fig1_lenet_dse bench_compile_time

# ---- DSE sweep: wall time over the fixed 24,000-point grid ----------------
DSE_POINTS=24000
DSE_OUT="$BUILD_DIR/bench_fig1_lenet_dse.out"
start_ns=$(date +%s%N)
"$BUILD_DIR/bench_fig1_lenet_dse" > "$DSE_OUT"
end_ns=$(date +%s%N)
wall_s=$(awk "BEGIN { printf \"%.3f\", ($end_ns - $start_ns) / 1e9 }")
pps=$(awk "BEGIN { printf \"%.1f\", $DSE_POINTS / $wall_s }")
out_sha=$(sha256sum "$DSE_OUT" | cut -d' ' -f1)

cat > "$REPO_ROOT/BENCH_dse.json" <<EOF
{
  "bench": "bench_fig1_lenet_dse",
  "points": $DSE_POINTS,
  "wall_seconds": $wall_s,
  "points_per_sec": $pps,
  "output_sha256": "$out_sha",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "commit": "$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
}
EOF
echo "DSE sweep: ${wall_s}s for $DSE_POINTS points (${pps} points/sec)"

# ---- Pipeline compile-time microbenchmarks --------------------------------
"$BUILD_DIR/bench_compile_time" \
    --benchmark_format=json \
    --benchmark_out="$REPO_ROOT/BENCH_compile_time.json" \
    --benchmark_out_format=json > /dev/null
echo "Wrote BENCH_dse.json and BENCH_compile_time.json"
