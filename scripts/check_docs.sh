#!/usr/bin/env bash
# Documentation honesty checks (the CI `docs` job):
#
#   1. Every relative Markdown link in README.md and docs/*.md resolves
#      to a file or directory in the repo.
#   2. Every HIDA_* environment variable the compiler (src/), the
#      benches (bench/) or the scripts (scripts/) read appears in the
#      README knob table.
#
# Exit non-zero with one line per problem; print OK otherwise. Callable
# locally from anywhere inside the repo.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

status=0

# ---- 1. Relative link checker ---------------------------------------------
# Markdown inline links: [text](target). External schemes and pure
# anchors are skipped; a #fragment on a relative target is stripped.
doc_files=(README.md)
while IFS= read -r f; do
    doc_files+=("$f")
done < <(find docs -name '*.md' | sort)

for doc in "${doc_files[@]}"; do
    dir=$(dirname "$doc")
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [[ -z "$path" ]] && continue
        if [[ ! -e "$dir/$path" ]]; then
            echo "FAIL: $doc links to missing file '$target'" >&2
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//')
done

# ---- 2. Knob-table completeness -------------------------------------------
# Every HIDA_* var read from the environment — getenv()/envUint()/
# envDouble() in C++, ${HIDA_*} expansion in shell — must have a row
# (backtick-quoted) in the README knob table. HIDA_ASSERT/PANIC/FATAL
# are macros, not knobs; *_H are include guards.
vars=$(
    {
        grep -rhoE '(getenv|envUint|envDouble)\("HIDA_[A-Z_0-9]+"' \
            src/ bench/ 2>/dev/null | grep -oE 'HIDA_[A-Z_0-9]+'
        grep -rhoE '\$\{HIDA_[A-Z_0-9]+' scripts/*.sh 2>/dev/null |
            grep -oE 'HIDA_[A-Z_0-9]+'
    } | sort -u
)

for var in $vars; do
    if ! grep -q "\`$var\`" README.md; then
        echo "FAIL: env var $var is read but missing from the README" \
             "knob table" >&2
        status=1
    fi
done

if [[ $status -ne 0 ]]; then
    exit $status
fi
echo "OK: all relative doc links resolve; knob table covers" \
     "$(echo "$vars" | wc -w) HIDA_* env vars"
