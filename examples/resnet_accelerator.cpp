/**
 * @file
 * ResNet-18 accelerator study: shows why data-path balancing matters for
 * networks with shortcut paths (Section 6.4.2). Compiles ResNet-18 with
 * and without the balancing pass and compares steady-state intervals,
 * then prints the per-layer breakdown of the balanced design.
 */

#include <cstdio>

#include "src/analysis/dataflow_graph.h"
#include "src/driver/driver.h"
#include "src/estimator/qor.h"
#include "src/models/dnn_models.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::vu9pSlr();
    int64_t macs = 0;

    auto run = [&](bool balancing) {
        OwnedModule module = buildDnnModel("ResNet-18", &macs);
        FlowOptions options = optionsFor(Flow::kHida);
        options.maxParallelFactor = 64;
        options.enableBalancing = balancing;
        CompileResult result = compile(module.get(), options, device);
        std::printf("%-22s interval %.0f cycles, throughput %.2f samples/s, "
                    "%ld DSP, %ld BRAM\n",
                    balancing ? "with balancing" : "without balancing",
                    result.qor.intervalCycles, result.qor.throughput(device),
                    result.qor.res.dsp, result.qor.res.bram18k);
        return result.qor.intervalCycles;
    };

    std::printf("ResNet-18 (%.2f GMACs) on %s:\n", macs / 1e9,
                device.name.c_str());
    double without = run(false);
    double with_balancing = run(true);
    std::printf("balancing speedup: %.2fx\n", without / with_balancing);

    // Per-layer breakdown of the balanced design: the residual blocks'
    // shortcut channels now carry soft FIFOs / token streams.
    OwnedModule module = buildDnnModel("ResNet-18", nullptr);
    FlowOptions options = optionsFor(Flow::kHida);
    options.maxParallelFactor = 64;
    compile(module.get(), options, device);
    QorEstimator estimator(device);
    int tokens = 0, soft_fifos = 0;
    module.get().op()->walk([&](Operation* op) {
        if (isa<StreamOp>(op) && StreamOp(op).isToken())
            ++tokens;
        if (isa<BufferOp>(op) && op->hasAttr("soft_fifo_depth"))
            ++soft_fifos;
    });
    std::printf("\nbalanced design: %d token streams, %d soft FIFOs\n",
                tokens, soft_fifos);

    std::printf("\nper-layer latency (top-level dataflow nodes):\n");
    module.get().op()->walk([&](Operation* op) {
        if (isa<ScheduleOp>(op) &&
            op->parentOfName(ScheduleOp::kOpName) == nullptr) {
            for (NodeOp node : ScheduleOp(op).nodes()) {
                DesignQor qor = estimator.estimateNode(node);
                std::printf("  %-8s %10ld cycles %6ld DSP\n",
                            node.label().c_str(), qor.latencyCycles,
                            qor.res.dsp);
            }
        }
    });
    return 0;
}
