/**
 * @file
 * Quickstart: build a tiny CNN with the PyTorch-like frontend, run the
 * full HIDA pipeline, and inspect every artifact — the Functional IR, the
 * optimized Structural IR, the QoR report, and the emitted HLS C++.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "src/driver/driver.h"
#include "src/emitter/hls_emitter.h"
#include "src/frontend/torch_builder.h"
#include "src/ir/printer.h"

using namespace hida;

int
main()
{
    // 1. Describe the model exactly like a torch.nn forward function.
    TorchBuilder tb;
    Value* x = tb.input({1, 3, 16, 16});
    x = tb.convRelu(x, 8, 3, /*stride=*/1, /*pad=*/1);
    x = tb.maxpool(x, 2, 2);
    x = tb.convRelu(x, 16, 3, 1, 1);
    x = tb.flatten(x);
    x = tb.linear(x, 10);
    OwnedModule module = tb.takeModule();

    std::printf("==== Functional (tensor) IR ====\n");
    std::cout << toString(module.get().op());

    // 2. Compile with the full HIDA flow for a ZU3EG.
    TargetDevice device = TargetDevice::zu3eg();
    FlowOptions options = optionsFor(Flow::kHida);
    options.maxParallelFactor = 16;
    CompileResult result = compile(module.get(), options, device);

    std::printf("\n==== Optimized Structural IR ====\n");
    std::cout << toString(module.get().op());

    // 3. The QoR report (what Vitis HLS synthesis would estimate).
    std::printf("\n==== QoR on %s ====\n", device.name.c_str());
    std::printf("latency    : %ld cycles\n", result.qor.latencyCycles);
    std::printf("interval   : %.0f cycles  (throughput %.1f samples/s)\n",
                result.qor.intervalCycles, result.qor.throughput(device));
    std::printf("resources  : %ld LUT, %ld FF, %ld DSP, %ld BRAM18K\n",
                result.qor.res.lut, result.qor.res.ff, result.qor.res.dsp,
                result.qor.res.bram18k);
    std::printf("feasible   : %s (overload %.2fx)\n",
                result.feasible ? "yes" : "no", result.overload);
    std::printf("compile    : %.3f s\n", result.compileSeconds);

    // 4. Emit synthesizable HLS C++.
    std::printf("\n==== Emitted HLS C++ (first 60 lines) ====\n");
    std::string code = emitHlsCpp(module.get());
    int lines = 0;
    for (char c : code) {
        std::putchar(c);
        if (c == '\n' && ++lines >= 60)
            break;
    }
    std::printf("... (%zu bytes total)\n", code.size());
    return 0;
}
