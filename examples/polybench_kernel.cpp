/**
 * @file
 * C++-kernel path (the Polygeist route of Figure 3): build the 2mm kernel
 * as affine IR, compile it under all three flows, and emit the HIDA HLS
 * C++. Demonstrates multi-producer elimination turning the init/update
 * nests of each matrix product into a pipelined dataflow.
 */

#include <cstdio>
#include <iostream>

#include "src/analysis/dataflow_graph.h"
#include "src/driver/driver.h"
#include "src/emitter/hls_emitter.h"
#include "src/models/polybench.h"

using namespace hida;

int
main()
{
    TargetDevice device = TargetDevice::zu3eg();

    std::printf("2mm (D = beta*D + tmp*C, tmp = A*B) on %s:\n\n",
                device.name.c_str());
    for (Flow flow : {Flow::kVitis, Flow::kScaleHls, Flow::kHida}) {
        OwnedModule module = buildPolybenchKernel("2mm");
        CompileResult result = compile(module.get(), flow, device);
        std::printf("%-9s throughput %10.2f samples/s, %4ld DSP, "
                    "%4ld BRAM, compile %.3fs\n", flowName(flow).c_str(),
                    result.effectiveThroughput, result.qor.res.dsp,
                    result.qor.res.bram18k, result.compileSeconds);
    }

    // Show the dataflow structure HIDA built.
    OwnedModule module = buildPolybenchKernel("2mm");
    compile(module.get(), Flow::kHida, device);
    module.get().op()->walk([&](Operation* op) {
        if (isa<ScheduleOp>(op)) {
            DataflowGraph graph{ScheduleOp(op)};
            std::printf("\ndataflow schedule: %zu nodes, %zu edges\n",
                        graph.nodes().size(), graph.edges().size());
            for (const DataflowEdge& edge : graph.edges())
                std::printf("  %s -> %s via %s\n",
                            NodeOp(edge.producer).label().c_str(),
                            NodeOp(edge.consumer).label().c_str(),
                            edge.channel->nameHint().c_str());
        }
    });

    std::printf("\n==== Emitted HLS C++ (first 50 lines) ====\n");
    std::string code = emitHlsCpp(module.get());
    int lines = 0;
    for (char c : code) {
        std::putchar(c);
        if (c == '\n' && ++lines >= 50)
            break;
    }
    std::printf("... (%zu bytes total)\n", code.size());
    return 0;
}
