/**
 * @file
 * Hand-built Structural dataflow + simulator exploration: constructs the
 * Figure 8 join topology (Node0 feeding Node1 and Node2, Node2 also
 * consuming Node1) directly with the dataflow simulator and sweeps the
 * short-path channel capacity, showing how buffer duplication / soft FIFO
 * depth restores full pipelining.
 */

#include <cstdio>

#include "src/sim/dataflow_sim.h"

using namespace hida;

int
main()
{
    std::printf("Figure 8 topology: Node0 -> {Node1 -> Node2, Node2}\n");
    std::printf("latencies: Node0=100, Node1=100, Node2=100 cycles\n\n");
    std::printf("%28s %14s %14s\n", "Buf3 capacity (stages)",
                "frame latency", "interval");

    for (int64_t capacity : {1, 2, 3, 4}) {
        SimGraph graph;
        // Channels: 0 = Buf1 (Node0->Node1), 1 = Buf2 (Node1->Node2),
        //           2 = Buf3 (Node0->Node2, the short path).
        graph.channels = {{2}, {2}, {capacity}};
        SimNode node0;
        node0.latency = 100;
        node0.outputs = {0, 2};
        SimNode node1;
        node1.latency = 100;
        node1.inputs = {0};
        node1.outputs = {1};
        SimNode node2;
        node2.latency = 100;
        node2.inputs = {1, 2};
        graph.nodes = {node0, node1, node2};

        SimResult result = simulate(graph);
        std::printf("%28ld %14ld %14.1f\n", capacity, result.frameLatency,
                    result.steadyInterval);
    }
    std::printf("\nWith capacity 1 the short path stalls Node0 (interval > "
                "node latency);\ncapacity 3 (= path depth difference + 2) "
                "restores interval = 100,\nwhich is what BalanceDataPaths "
                "computes automatically.\n");

    // Contrast with a multi-producer violation: sequential execution.
    SimGraph sequential;
    sequential.sequential = true;
    sequential.nodes = {SimNode{100, {}, {}}, SimNode{100, {}, {}},
                        SimNode{100, {}, {}}};
    SimResult result = simulate(sequential);
    std::printf("\nmulti-producer violation (Section 6.4.1): interval %.1f "
                "(= sum of latencies)\n", result.steadyInterval);
    return 0;
}
